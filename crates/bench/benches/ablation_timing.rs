//! Ablation: the §6 VD timing side channel and its mitigations.
//!
//! A multithreaded victim whose coherence transactions are satisfied from
//! the VD takes ~7 cycles longer per transaction than one satisfied from
//! the ED/TD. The paper proposes padding ED/TD responses and leaves the
//! design to future work; this bench measures (a) the raw differential,
//! (b) both mitigations closing it, and (c) what each mitigation costs on
//! ordinary multithreaded workloads.

use secdir_bench::{header, run_streams, DEFAULT_MEASURE, DEFAULT_WARMUP};
use secdir_machine::{DirectoryKind, Machine, MachineConfig, TimingMitigation};
use secdir_mem::{CoreId, LineAddr};
use secdir_workloads::parsec::ParsecApp;

/// Latency of a cross-core read when the line's entry is in the ED.
fn ed_transaction(mitigation: TimingMitigation) -> u64 {
    let mut cfg = MachineConfig::skylake_x(8, DirectoryKind::SecDir);
    cfg.timing_mitigation = mitigation;
    let mut m = Machine::new(cfg);
    let line = LineAddr::new(0x40);
    m.access(CoreId(0), line, false);
    m.access(CoreId(1), line, false).latency
}

/// Latency of a cross-core read when the line's entry is in the victim's
/// VD (ED and TD controlled by the attacker: VD-only mode isolates the
/// path exactly).
fn vd_transaction(mitigation: TimingMitigation) -> u64 {
    let mut cfg = MachineConfig::skylake_x(8, DirectoryKind::SecDirVdOnly);
    cfg.timing_mitigation = mitigation;
    let mut m = Machine::new(cfg);
    let line = LineAddr::new(0x40);
    m.access(CoreId(0), line, false);
    m.access(CoreId(1), line, false).latency
}

fn main() {
    header("Section 6: the ED/TD-vs-VD transaction differential");
    println!(
        "{:>11} {:>8} {:>8} {:>14}",
        "mitigation", "ED/TD", "VD", "differential"
    );
    for (name, mit) in [
        ("off", TimingMitigation::Off),
        ("naive", TimingMitigation::Naive),
        ("selective", TimingMitigation::Selective),
    ] {
        let ed = ed_transaction(mit);
        let vd = vd_transaction(mit);
        println!(
            "{:>11} {:>8} {:>8} {:>14}",
            name,
            ed,
            vd,
            vd as i64 - ed as i64
        );
    }
    println!("(paper: \"accessing the VD extends by about 7 cycles a transaction\")");

    header("Cost of the mitigations on multithreaded workloads");
    println!(
        "{:>14} {:>10} {:>10} {:>10}",
        "app", "off", "naive", "selective"
    );
    for app in [
        &ParsecApp::FLUIDANIMATE,
        &ParsecApp::CANNEAL,
        &ParsecApp::FREQMINE,
    ] {
        let mut cycles = Vec::new();
        for mit in [
            TimingMitigation::Off,
            TimingMitigation::Naive,
            TimingMitigation::Selective,
        ] {
            let mut cfg = MachineConfig::skylake_x(8, DirectoryKind::SecDir);
            cfg.timing_mitigation = mit;
            let mut machine = Machine::new(cfg);
            let mut streams = app.threads(8, 0x9a25ec);
            secdir_machine::run_workload(&mut machine, &mut streams, DEFAULT_WARMUP / 4);
            let s = secdir_machine::run_workload(&mut machine, &mut streams, DEFAULT_MEASURE / 4);
            cycles.push(s.cycles);
        }
        println!(
            "{:>14} {:>10.3} {:>10.3} {:>10.3}",
            app.name,
            1.0,
            cycles[1] as f64 / cycles[0] as f64,
            cycles[2] as f64 / cycles[0] as f64
        );
    }
    println!("\n(normalized execution time; the selective mitigation closes the channel");
    println!(" at a fraction of the naive slowdown, as §6 anticipates)");
    let _ = run_streams; // silence unused when the helper set changes
}
