//! Figure 6: trace of the victim's accesses to the AES T0 table, running
//! on SecDir with ED and TD disabled (the most powerful attacker fully
//! controls them, §9).
//!
//! Paper shape: the first access to each of T0's 16 lines is a main-memory
//! access; **every** subsequent access hits the private L1/L2 — the
//! attacker, unable to touch the victim's VD, observes nothing.

use secdir_bench::header;
use secdir_machine::{AccessStream, DirectoryKind, Machine, MachineConfig, ServedBy};
use secdir_mem::{CoreId, LineAddr};
use secdir_workloads::aes::AesVictim;

const ENCRYPTIONS: u64 = 200;

fn main() {
    let mut machine = Machine::new(MachineConfig::skylake_x(8, DirectoryKind::SecDirVdOnly));
    let base = LineAddr::new(0x3220 >> 6 << 6); // mirror the paper's 0x3220 region
    let key = *b"SecDir AES key!!";
    let mut victim = AesVictim::new(key, base, 0xfe11);

    let t0_lines: Vec<LineAddr> = victim.table_lines(0);
    let mut first_touch: Vec<Option<u64>> = vec![None; 16];
    let mut mem_accesses = [0u64; 16];
    let mut private_hits = [0u64; 16];
    let mut other_serves = 0u64;
    let mut time = 0u64;

    while victim.encryptions < ENCRYPTIONS {
        let acc = victim.next_access().expect("victim stream is infinite");
        let outcome = machine.access(CoreId(0), acc.line, acc.write);
        time += u64::from(acc.gap) + outcome.latency;
        if let Some(idx) = t0_lines.iter().position(|&l| l == acc.line) {
            match outcome.served {
                ServedBy::Memory => {
                    mem_accesses[idx] += 1;
                    first_touch[idx].get_or_insert(time);
                }
                s if s.is_private_hit() => private_hits[idx] += 1,
                _ => other_serves += 1,
            }
        }
    }

    header("Figure 6: AES T0 accesses on SecDir with VD only (no ED/TD)");
    println!(
        "{:>6} {:>12} {:>14} {:>12}",
        "line", "first@cycle", "mem_accesses", "L1/L2 hits"
    );
    for (i, line) in t0_lines.iter().enumerate() {
        println!(
            "{:>6} {:>12} {:>14} {:>12}",
            format!("{line}"),
            first_touch[i].map_or("never".into(), |t| t.to_string()),
            mem_accesses[i],
            private_hits[i]
        );
    }
    let total_mem: u64 = mem_accesses.iter().sum();
    let total_hits: u64 = private_hits.iter().sum();
    println!(
        "\n{ENCRYPTIONS} encryptions: {total_mem} memory accesses, {total_hits} private hits, \
         {other_serves} other"
    );
    println!(
        "paper shape (16 first-touch misses, all re-accesses private): {}",
        if total_mem == 16 && other_serves == 0 {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}
