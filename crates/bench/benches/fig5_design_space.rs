//! Figure 5: per-core machine-wide VD entries ÷ L2 lines, sweeping the
//! core count (4–128) and the retained ED ways (W_ED ∈ 6–10) under the
//! equal-total-storage constraint of §7.
//!
//! Paper shape: every curve grows with the core count (the reused ED
//! sharer bits pay for more VD entries); W_ED = 8 crosses 1.0 in the
//! tens of cores.

use secdir_area::design_space::{design_point, figure5_sweep};
use secdir_bench::header;

fn main() {
    header("Figure 5: #per-core VD entries / #L2 lines (same storage as Skylake-X)");
    print!("{:>7}", "cores");
    for w_ed in 6..=10 {
        print!("  W_ED={w_ed}");
    }
    println!();
    for cores in [4usize, 8, 16, 32, 64, 128] {
        print!("{cores:>7}");
        for w_ed in 6..=10 {
            let p = design_point(cores, w_ed).expect("design point fits");
            print!("  {:>6.3}", p.ratio_to_l2);
        }
        println!();
    }

    header("Chosen VD bank shapes (W_ED = 8 column)");
    println!(
        "{:>7} {:>8} {:>8} {:>14}",
        "cores", "S_VD", "W_VD", "entries/core"
    );
    for cores in [4usize, 8, 16, 32, 64, 128] {
        let p = design_point(cores, 8).expect("fits");
        println!(
            "{:>7} {:>8} {:>8} {:>14}",
            cores, p.s_vd, p.w_vd, p.per_core_vd_entries
        );
    }

    // Consistency check mirrored from the paper's text.
    let all = figure5_sweep();
    assert_eq!(all.len(), 30);
    println!(
        "\npaper check: W_ED=8 ratio >= 1 first at N = {}",
        [4usize, 8, 16, 32, 64, 128]
            .iter()
            .find(|&&n| design_point(n, 8).unwrap().ratio_to_l2 >= 1.0)
            .map(|n| n.to_string())
            .unwrap_or_else(|| "none".into())
    );
}
