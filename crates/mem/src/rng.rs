//! A tiny deterministic RNG used for replacement policies and workloads.

use serde::{Deserialize, Serialize};

/// SplitMix64: a small, fast, deterministic PRNG.
///
/// Every source of randomness in the simulator (random replacement, workload
/// generation) is seeded explicitly so experiments are bit-for-bit
/// reproducible — a hard requirement for side-channel experiments where a
/// "conflict" must be attributable.
///
/// # Examples
///
/// ```
/// use secdir_mem::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        super::hash::mix64(self.state)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift rejection-free mapping; bias is negligible for the
        // small bounds (ways, sets, working-set sizes) used here.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        SplitMix64::new(0x5ec0_d15e_c0d1_5eed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_in_range() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            assert!(r.next_below(17) < 17);
        }
    }

    #[test]
    fn next_below_covers_small_range() {
        let mut r = SplitMix64::new(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.next_below(4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(42);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn next_below_rejects_zero() {
        SplitMix64::new(1).next_below(0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
