//! Slice-selection and skewing hash functions.

use serde::{Deserialize, Serialize};

use crate::LineAddr;
use crate::SliceId;

/// Mixes a 64-bit value (finalizer of SplitMix64/MurmurHash3).
///
/// Used as the basis of the slice hash; a stand-in for Intel's proprietary
/// slice-selection function, which is also a (linear) hash over the physical
/// address bits designed to spread lines uniformly over slices.
#[inline]
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The LLC slice-selection hash: maps a line address to one of `num_slices`
/// slices.
///
/// Intel's hash is proprietary; what matters for the paper's experiments is
/// that it (a) spreads benign traffic uniformly over slices and (b) is a
/// fixed public function the *attacker* can use to build eviction sets.
/// Both properties hold here, and [`secdir-attack`](https://docs.rs) builds
/// its eviction sets through this same function.
///
/// # Examples
///
/// ```
/// use secdir_mem::{LineAddr, SliceHash};
///
/// let h = SliceHash::new(8);
/// // Deterministic: same line, same slice.
/// assert_eq!(h.slice_of(LineAddr::new(42)), h.slice_of(LineAddr::new(42)));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SliceHash {
    num_slices: usize,
}

impl SliceHash {
    /// Creates a slice hash for a machine with `num_slices` slices.
    ///
    /// # Panics
    ///
    /// Panics if `num_slices` is zero.
    pub fn new(num_slices: usize) -> Self {
        assert!(num_slices > 0, "machine must have at least one slice");
        SliceHash { num_slices }
    }

    /// Number of slices this hash distributes over.
    pub fn num_slices(&self) -> usize {
        self.num_slices
    }

    /// The slice that `line` maps to.
    #[inline]
    pub fn slice_of(&self, line: LineAddr) -> SliceId {
        SliceId((mix64(line.value()) % self.num_slices as u64) as usize)
    }
}

/// A conventional set-index function: low-order line-address bits.
///
/// Used by the TD and ED (paper Figure 4(a)).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SetIndexHash {
    num_sets: usize,
}

impl SetIndexHash {
    /// Creates the index function for a structure with `num_sets` sets.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets` is not a power of two.
    pub fn new(num_sets: usize) -> Self {
        assert!(
            num_sets.is_power_of_two(),
            "num_sets must be a power of two"
        );
        SetIndexHash { num_sets }
    }

    /// The set that `line` maps to.
    #[inline]
    pub fn index(&self, line: LineAddr) -> usize {
        line.set_index(self.num_sets)
    }
}

/// One function of the Seznec–Bodin skewing family, used as the cuckoo hash
/// functions `h1(x)`/`h2(x)` of a Victim Directory bank (paper §8).
///
/// Following "Skewed-Associative Caches" (Seznec & Bodin, PARLE '93), the
/// function splits the line address into an `n`-bit field `A1` (lowest bits)
/// and an `n`-bit field `A2` (next bits), applies `k` rounds of a one-bit
/// circular shift σ to `A1`, and XORs the two fields together with the
/// mixed upper bits so every tag bit influences the index. The family
/// distributes lines equally among sets and has the local and inter-bank
/// dispersion properties the paper relies on: two lines that conflict under
/// `h1` almost never conflict under `h2`.
///
/// # Examples
///
/// ```
/// use secdir_mem::{LineAddr, SkewHash};
///
/// let h1 = SkewHash::new(0, 512);
/// let h2 = SkewHash::new(1, 512);
/// let line = LineAddr::new(0xabcdef);
/// assert!(h1.index(line) < 512);
/// // The two functions are genuinely different.
/// assert!((0..512u64).any(|i| {
///     let l = LineAddr::new(i << 9);
///     h1.index(l) != h2.index(l)
/// }));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SkewHash {
    /// Which member of the family (0 = `h1`, 1 = `h2`, ...).
    k: u32,
    num_sets: usize,
    index_bits: u32,
}

impl SkewHash {
    /// Creates the `k`-th skewing function for a bank with `num_sets` sets.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets` is not a power of two or is less than 2.
    pub fn new(k: u32, num_sets: usize) -> Self {
        assert!(
            num_sets.is_power_of_two() && num_sets >= 2,
            "num_sets must be a power of two >= 2"
        );
        SkewHash {
            k,
            num_sets,
            index_bits: num_sets.trailing_zeros(),
        }
    }

    /// Which member of the skewing family this is.
    pub fn family_index(&self) -> u32 {
        self.k
    }

    /// Number of sets the function indexes into.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// One-bit circular shift on an `index_bits`-wide field (Seznec's σ).
    #[inline]
    fn sigma(&self, x: u64) -> u64 {
        let n = self.index_bits;
        let mask = (1u64 << n) - 1;
        ((x << 1) | (x >> (n - 1))) & mask
    }

    /// The set that `line` maps to under this skewing function.
    #[inline]
    pub fn index(&self, line: LineAddr) -> usize {
        let n = self.index_bits;
        let mask = (1u64 << n) - 1;
        let a1 = line.value() & mask;
        let a2 = (line.value() >> n) & mask;
        let upper = line.value() >> (2 * n);
        // Fold the remaining tag bits so lines differing only in high bits
        // still disperse; mix differently per family member.
        let folded =
            mix64(upper.wrapping_add(u64::from(self.k).wrapping_mul(0x9e37_79b9_7f4a_7c15))) & mask;
        let mut a = a1;
        for _ in 0..=self.k {
            a = self.sigma(a);
        }
        ((a ^ a2 ^ folded) & mask) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_hash_is_uniform_enough() {
        let h = SliceHash::new(8);
        let mut counts = [0usize; 8];
        for i in 0..80_000u64 {
            counts[h.slice_of(LineAddr::new(i)).0] += 1;
        }
        for &c in &counts {
            // Each slice should get ~10000 +- 10%.
            assert!((9_000..11_000).contains(&c), "skewed slice count {c}");
        }
    }

    #[test]
    fn slice_hash_covers_all_slices() {
        let h = SliceHash::new(7); // non-power-of-two also works
        let mut seen = [false; 7];
        for i in 0..10_000u64 {
            seen[h.slice_of(LineAddr::new(i)).0] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "at least one slice")]
    fn slice_hash_rejects_zero() {
        SliceHash::new(0);
    }

    #[test]
    fn set_index_hash_matches_low_bits() {
        let h = SetIndexHash::new(2048);
        let l = LineAddr::new(0x12345);
        assert_eq!(h.index(l), 0x12345 & 2047);
    }

    #[test]
    fn skew_hash_in_range_and_deterministic() {
        for k in 0..2 {
            let h = SkewHash::new(k, 512);
            for i in 0..5_000u64 {
                let l = LineAddr::new(i.wrapping_mul(0x1234_5677));
                let idx = h.index(l);
                assert!(idx < 512);
                assert_eq!(idx, h.index(l));
            }
        }
    }

    #[test]
    fn skew_hash_distributes_uniformly() {
        let h = SkewHash::new(0, 512);
        let mut counts = vec![0usize; 512];
        for i in 0..51_200u64 {
            counts[h.index(LineAddr::new(i))] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max < 100 * 2 && min > 100 / 2, "min {min} max {max}");
    }

    #[test]
    fn skew_functions_disperse_conflicts() {
        // Lines that all map to the same set under h1 should spread widely
        // under h2 — the inter-bank dispersion property SecDir relies on to
        // reduce victim self-conflicts.
        let h1 = SkewHash::new(0, 512);
        let h2 = SkewHash::new(1, 512);
        let mut conflicting = Vec::new();
        let mut i = 0u64;
        while conflicting.len() < 64 {
            let l = LineAddr::new(i.wrapping_mul(0x9e37_79b9));
            if h1.index(l) == 17 {
                conflicting.push(l);
            }
            i += 1;
        }
        let mut h2_sets: Vec<usize> = conflicting.iter().map(|&l| h2.index(l)).collect();
        h2_sets.sort_unstable();
        h2_sets.dedup();
        assert!(
            h2_sets.len() > 32,
            "h2 only spread into {} sets",
            h2_sets.len()
        );
    }

    #[test]
    fn sigma_is_a_rotation() {
        let h = SkewHash::new(0, 8); // 3 index bits
        assert_eq!(h.sigma(0b100), 0b001);
        assert_eq!(h.sigma(0b011), 0b110);
    }
}
