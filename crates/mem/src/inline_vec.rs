//! A small-vector that stores its first `N` elements inline.
//!
//! The simulator's transaction path returns invalidation lists on every
//! directory response; almost all of them hold zero or one entry. A
//! heap-backed `Vec` would allocate on every such response — millions of
//! times per sweep cell — so [`InlineVec`] keeps the common case on the
//! stack and falls back to a heap spill vector only past `N` elements.
//!
//! Hand-rolled and std-only: the offline-dependency policy (DESIGN.md §5)
//! rules out `smallvec`/`arrayvec`, and the handful of operations the
//! transaction path needs — push, iterate, index, extend — fits in a page
//! of safe code. It lives here in `secdir-mem`, the root of the crate DAG,
//! so every layer (cache, coherence, secdir, machine) can use it without a
//! new dependency edge.

/// A vector whose first `N` elements live inline (no heap allocation);
/// elements past `N` spill to a heap `Vec`.
///
/// # Examples
///
/// ```
/// use secdir_mem::InlineVec;
///
/// let mut v: InlineVec<u32, 2> = InlineVec::new();
/// v.push(10);
/// v.push(20);
/// v.push(30); // spills
/// assert_eq!(v.len(), 3);
/// assert_eq!(v[2], 30);
/// assert_eq!(v.iter().sum::<u32>(), 60);
/// ```
#[derive(Clone, Debug)]
pub struct InlineVec<T, const N: usize> {
    /// The first `min(len, N)` elements; `None` beyond that.
    inline: [Option<T>; N],
    /// Total element count, including the spill.
    len: usize,
    /// Elements `N..len`; empty (and unallocated) until the inline part
    /// overflows.
    spill: Vec<T>,
}

impl<T, const N: usize> InlineVec<T, N> {
    /// Creates an empty vector. Does not allocate.
    #[inline]
    pub fn new() -> Self {
        InlineVec {
            inline: [(); N].map(|_| None),
            len: 0,
            spill: Vec::new(),
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether elements have overflowed onto the heap.
    pub fn spilled(&self) -> bool {
        self.len > N
    }

    /// Appends `value`. Allocates only when the inline capacity `N` is
    /// already full.
    #[inline]
    pub fn push(&mut self, value: T) {
        if self.len < N {
            self.inline[self.len] = Some(value);
        } else {
            self.spill.push(value);
        }
        self.len += 1;
    }

    /// The element at `index`, if in bounds.
    #[inline]
    pub fn get(&self, index: usize) -> Option<&T> {
        if index >= self.len {
            None
        } else if index < N {
            self.inline[index].as_ref()
        } else {
            self.spill.get(index - N)
        }
    }

    /// Iterates over the elements in insertion order. The iterator is a
    /// concrete (non-boxed) type: iteration itself never allocates.
    #[inline]
    pub fn iter(&self) -> Iter<'_, T> {
        self.inline
            .iter()
            .take(self.len.min(N))
            .flatten()
            .chain(self.spill.iter())
    }

    /// Deep-validates the representation invariants:
    ///
    /// * the first `min(len, N)` inline slots are `Some` and the rest `None`,
    /// * the spill holds exactly `len.saturating_sub(N)` elements (and is
    ///   untouched while the inline part has room).
    ///
    /// Cold diagnostic path (the `secdir-machine` `check`-feature oracle and
    /// tests), allocating only on failure.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found.
    pub fn check_bounds(&self) -> Result<(), String> {
        for (i, slot) in self.inline.iter().enumerate() {
            let expect_some = i < self.len.min(N);
            if slot.is_some() != expect_some {
                return Err(format!(
                    "inline slot {i} is {} but len is {} (inline capacity {N})",
                    if slot.is_some() { "occupied" } else { "empty" },
                    self.len
                ));
            }
        }
        let expect_spill = self.len.saturating_sub(N);
        if self.spill.len() != expect_spill {
            return Err(format!(
                "spill holds {} elements but len {} over inline capacity {N} implies {expect_spill}",
                self.spill.len(),
                self.len
            ));
        }
        Ok(())
    }

    /// Removes every element (the spill keeps its heap buffer).
    #[inline]
    pub fn clear(&mut self) {
        for slot in &mut self.inline {
            *slot = None;
        }
        self.spill.clear();
        self.len = 0;
    }
}

impl<T, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, const N: usize> std::ops::Index<usize> for InlineVec<T, N> {
    type Output = T;

    fn index(&self, index: usize) -> &T {
        self.get(index)
            .unwrap_or_else(|| panic!("index {index} out of bounds (len {})", self.len))
    }
}

impl<T, const N: usize> Extend<T> for InlineVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for value in iter {
            self.push(value);
        }
    }
}

impl<T, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut out = Self::new();
        out.extend(iter);
        out
    }
}

impl<T, const N: usize> IntoIterator for InlineVec<T, N> {
    type Item = T;
    type IntoIter = std::iter::Chain<
        std::iter::Flatten<std::iter::Take<std::array::IntoIter<Option<T>, N>>>,
        std::vec::IntoIter<T>,
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.inline
            .into_iter()
            .take(self.len.min(N))
            .flatten()
            .chain(self.spill)
    }
}

/// Borrowing iterator over an [`InlineVec`]: the occupied inline slots
/// followed by the spill.
pub type Iter<'a, T> = std::iter::Chain<
    std::iter::Flatten<std::iter::Take<std::slice::Iter<'a, Option<T>>>>,
    std::slice::Iter<'a, T>,
>;

impl<'a, T, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<T: PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<T: Eq, const N: usize> Eq for InlineVec<T, N> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty() {
        let v: InlineVec<u8, 4> = InlineVec::new();
        assert_eq!(v.len(), 0);
        assert!(v.is_empty());
        assert!(!v.spilled());
        assert_eq!(v.iter().count(), 0);
        assert_eq!(v.get(0), None);
    }

    #[test]
    fn push_and_index_within_inline_capacity() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        for i in 0..4 {
            v.push(i * 10);
        }
        assert_eq!(v.len(), 4);
        assert!(!v.spilled());
        assert_eq!(v[0], 0);
        assert_eq!(v[3], 30);
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![0, 10, 20, 30]);
    }

    #[test]
    fn spills_past_inline_capacity_in_order() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        for i in 0..5 {
            v.push(i);
        }
        assert_eq!(v.len(), 5);
        assert!(v.spilled());
        assert_eq!(v[1], 1);
        assert_eq!(v[4], 4);
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        assert_eq!(v.into_iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn indexing_past_len_panics() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        v.push(1);
        let _ = v[1];
    }

    #[test]
    fn equality_ignores_representation() {
        let a: InlineVec<u32, 2> = (0..5).collect();
        let b: InlineVec<u32, 2> = (0..5).collect();
        let c: InlineVec<u32, 2> = (0..4).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn extend_and_clear() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        v.extend([1, 2, 3]);
        assert_eq!(v.len(), 3);
        v.clear();
        assert!(v.is_empty());
        assert_eq!(v.iter().count(), 0);
        v.push(9);
        assert_eq!(v[0], 9);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn check_bounds_accepts_valid_and_rejects_corrupt_state() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        assert_eq!(v.check_bounds(), Ok(()));
        for i in 0..5 {
            v.push(i);
            assert_eq!(v.check_bounds(), Ok(()));
        }
        // Corrupt the length counter and verify the checker notices.
        v.len = 3;
        let err = v.check_bounds().unwrap_err();
        assert!(err.contains("spill"), "unexpected diagnostic: {err}");
    }

    #[test]
    fn borrowing_iteration_via_for_loop() {
        let v: InlineVec<u32, 2> = (0..4).collect();
        let mut sum = 0;
        for x in &v {
            sum += *x;
        }
        assert_eq!(sum, 6);
    }
}
