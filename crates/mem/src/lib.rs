//! Addresses, slice mapping, and hash functions for the SecDir reproduction.
//!
//! This crate is the lowest-level substrate: it defines the physical/line
//! address types used throughout the simulator, the LLC *slice-selection*
//! hash (standing in for Intel's proprietary hash), and the Seznec–Bodin
//! *skewing* hash family used by SecDir's cuckoo Victim Directories.
//!
//! # Examples
//!
//! ```
//! use secdir_mem::{LineAddr, SliceHash};
//!
//! let hash = SliceHash::new(8);
//! let slice = hash.slice_of(LineAddr::new(0x1234_5678));
//! assert!(slice.0 < 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod hash;
mod inline_vec;
mod rng;

pub use addr::{CoreId, LineAddr, PhysAddr, SliceId, LINE_BYTES, LINE_OFFSET_BITS};
pub use hash::{SetIndexHash, SkewHash, SliceHash};
pub use inline_vec::InlineVec;
pub use rng::SplitMix64;
