//! Physical and line address newtypes.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Number of bytes in a cache line (64 B, as in Skylake-X).
pub const LINE_BYTES: u64 = 64;

/// Number of address bits covered by the line offset (`log2(LINE_BYTES)`).
pub const LINE_OFFSET_BITS: u32 = 6;

/// A full physical byte address.
///
/// The paper models a 46-bit physical address space (40-bit line address +
/// 6 offset bits); we store it in a `u64` and mask on construction.
///
/// # Examples
///
/// ```
/// use secdir_mem::{PhysAddr, LineAddr};
///
/// let pa = PhysAddr::new(0x1040);
/// assert_eq!(pa.line(), LineAddr::new(0x41));
/// assert_eq!(pa.offset(), 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Width of a physical address in bits (line address bits + offset bits).
    pub const BITS: u32 = 46;

    /// Creates a physical address, masking to [`PhysAddr::BITS`] bits.
    #[inline]
    pub fn new(addr: u64) -> Self {
        PhysAddr(addr & ((1 << Self::BITS) - 1))
    }

    /// The raw address value.
    #[inline]
    pub fn value(self) -> u64 {
        self.0
    }

    /// The cache-line address this byte address falls in.
    #[inline]
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_OFFSET_BITS)
    }

    /// The byte offset within the cache line.
    #[inline]
    pub fn offset(self) -> u64 {
        self.0 & (LINE_BYTES - 1)
    }
}

impl fmt::Debug for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PhysAddr({:#x})", self.0)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<LineAddr> for PhysAddr {
    fn from(line: LineAddr) -> Self {
        PhysAddr(line.0 << LINE_OFFSET_BITS)
    }
}

/// A 40-bit cache-line address (physical address without the 6 offset bits).
///
/// All cache and directory structures operate at line granularity, so this is
/// the primary address type of the simulator.
///
/// # Examples
///
/// ```
/// use secdir_mem::LineAddr;
///
/// let l = LineAddr::new(0x1000);
/// assert_eq!(l.set_index(2048), 0x1000 % 2048);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Width of a line address in bits (paper Table 3: 40 bits).
    pub const BITS: u32 = 40;

    /// Creates a line address, masking to [`LineAddr::BITS`] bits.
    #[inline]
    pub fn new(line: u64) -> Self {
        LineAddr(line & ((1 << Self::BITS) - 1))
    }

    /// The raw 40-bit line number.
    #[inline]
    pub fn value(self) -> u64 {
        self.0
    }

    /// Conventional (low-order bits) set index for a structure with
    /// `num_sets` sets.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets` is not a power of two.
    #[inline]
    pub fn set_index(self, num_sets: usize) -> usize {
        assert!(
            num_sets.is_power_of_two(),
            "num_sets must be a power of two"
        );
        (self.0 as usize) & (num_sets - 1)
    }

    /// Conventional tag for a structure with `num_sets` sets: the line
    /// address bits above the set index.
    #[inline]
    pub fn tag(self, num_sets: usize) -> u64 {
        assert!(
            num_sets.is_power_of_two(),
            "num_sets must be a power of two"
        );
        self.0 >> num_sets.trailing_zeros()
    }

    /// The line address `n` lines after this one (wrapping within 40 bits).
    #[inline]
    pub fn offset_lines(self, n: u64) -> LineAddr {
        LineAddr::new(self.0.wrapping_add(n))
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineAddr({:#x})", self.0)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Identifier of a core (0-based).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct CoreId(pub usize);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Identifier of an LLC/directory slice (0-based; one slice per core).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct SliceId(pub usize);

impl fmt::Display for SliceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slice{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phys_addr_splits_into_line_and_offset() {
        let pa = PhysAddr::new(0xdead_beef);
        assert_eq!(pa.line().value(), 0xdead_beef >> 6);
        assert_eq!(pa.offset(), 0xdead_beef & 63);
    }

    #[test]
    fn phys_addr_masks_to_46_bits() {
        let pa = PhysAddr::new(u64::MAX);
        assert_eq!(pa.value(), (1 << 46) - 1);
    }

    #[test]
    fn line_addr_masks_to_40_bits() {
        let l = LineAddr::new(u64::MAX);
        assert_eq!(l.value(), (1 << 40) - 1);
    }

    #[test]
    fn line_round_trips_through_phys() {
        let l = LineAddr::new(0x12345);
        assert_eq!(PhysAddr::from(l).line(), l);
    }

    #[test]
    fn set_index_and_tag_partition_the_address() {
        let l = LineAddr::new(0xabcdef);
        let sets = 2048;
        let rebuilt = (l.tag(sets) << 11) | l.set_index(sets) as u64;
        assert_eq!(rebuilt, l.value());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn set_index_rejects_non_power_of_two() {
        LineAddr::new(1).set_index(3);
    }

    #[test]
    fn offset_lines_advances() {
        let l = LineAddr::new(10);
        assert_eq!(l.offset_lines(5).value(), 15);
    }

    #[test]
    fn display_impls_are_nonempty() {
        assert!(!format!("{}", CoreId(3)).is_empty());
        assert!(!format!("{}", SliceId(2)).is_empty());
        assert!(!format!("{}", LineAddr::new(0)).is_empty());
        assert!(!format!("{}", PhysAddr::new(0)).is_empty());
    }
}
