//! Recovering an RSA exponent through the directory, bit by bit.
//!
//! The victim runs square-and-multiply; the multiply routine's buffer is
//! touched only for 1-bits of the secret exponent. Between steps, the
//! attacker evict+reloads one multiply-buffer line: on the Baseline
//! directory the reload latency reveals every bit, on SecDir it reveals
//! nothing.
//!
//! Run with `cargo run --release --example rsa_leak`.

use secdir_attack::eviction::build_eviction_set;
use secdir_machine::{DirectoryKind, Machine, MachineConfig};
use secdir_mem::{CoreId, LineAddr};
use secdir_workloads::rsa::{RsaStep, RsaVictim};

const VICTIM: CoreId = CoreId(0);
const LINES_PER_CORE: usize = 16;
const THRESHOLD: u64 = 100;

fn recover_exponent(kind: DirectoryKind, exponent: u64) -> (u64, u64) {
    let mut machine = Machine::new(MachineConfig::skylake_x(8, kind));
    let attackers: Vec<CoreId> = (1..8).map(CoreId).collect();
    let victim = RsaVictim::new(exponent, LineAddr::new(0x9_0000));
    let probe = victim.multiply_lines()[0];
    let ev = build_eviction_set(&machine, probe, LINES_PER_CORE * attackers.len(), 1 << 33);

    // Replay the victim's steps; the attacker evicts before and reloads
    // after each square step (a square is always followed by the optional
    // multiply, so the reload observes whether the multiply happened).
    let mut recovered: u64 = 1; // leading 1-bit is implicit
    let steps = victim.steps();
    let mut i = 0;
    while i < steps.len() {
        debug_assert_eq!(steps[i], RsaStep::Square);
        // Evict the multiply buffer's directory entries.
        for _pass in 0..2 {
            for (k, &core) in attackers.iter().enumerate() {
                for &l in &ev[k * LINES_PER_CORE..(k + 1) * LINES_PER_CORE] {
                    machine.access(core, l, false);
                }
            }
        }
        // Victim: one square step, plus the multiply if the bit is set.
        for &l in &victim.multiply_lines() {
            // The square buffer occupies the lines before the multiply
            // buffer; replay the square touch first.
            let _ = l; // (buffer layout is handled by the stream below)
        }
        // Square touches.
        for j in 0..8u64 {
            machine.access(VICTIM, LineAddr::new(0x9_0000 + j), true);
        }
        i += 1;
        let multiplied = i < steps.len() && steps[i] == RsaStep::Multiply;
        if multiplied {
            for &l in &victim.multiply_lines() {
                machine.access(VICTIM, l, true);
            }
            i += 1;
        }
        // Reload the probe line and decide the bit.
        let latency = machine.access(attackers[0], probe, false).latency;
        recovered = (recovered << 1) | u64::from(latency < THRESHOLD);
    }
    (recovered, machine.stats().cores[VICTIM.0].inclusion_victims)
}

fn main() {
    let secret: u64 = 0b1011_0010_1101_0111;
    println!("victim's secret exponent: {secret:#018b}\n");
    for (name, kind) in [
        ("Baseline (Skylake-X)", DirectoryKind::Baseline),
        ("SecDir", DirectoryKind::SecDir),
    ] {
        let (recovered, iv) = recover_exponent(kind, secret);
        let correct_bits = 64 - (recovered ^ secret).count_ones();
        println!("{name:<22}: recovered {recovered:#018b}");
        println!(
            "{:<22}  {}/64 bits correct, victim inclusion victims: {iv}",
            "", correct_bits
        );
        if kind == DirectoryKind::Baseline {
            assert_eq!(recovered, secret, "baseline attack should be exact");
        }
    }
}
