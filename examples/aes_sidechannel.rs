//! The paper's §9 scenario: an attacker spies on the T-table accesses of an
//! AES victim through the coherence directory.
//!
//! Per encryption, the attacker uses evict+reload on one line of the T0
//! table: it evicts the line's directory entry (and hence — on the Baseline
//! — the victim's cached copy), lets the victim encrypt one block, then
//! reloads the line and times the access. A fast reload means the victim
//! touched that T0 line, which leaks the data-dependent index stream of the
//! cipher. On SecDir the eviction never reaches the victim's copy and the
//! probe is blind.
//!
//! Run with `cargo run --release --example aes_sidechannel`.

use secdir_attack::eviction::build_eviction_set;
use secdir_machine::{AccessStream, DirectoryKind, Machine, MachineConfig};
use secdir_mem::{CoreId, LineAddr};
use secdir_workloads::aes::{Aes128, TableAccess};

const VICTIM: CoreId = CoreId(0);
const ATTACKERS: [CoreId; 7] = [
    CoreId(1),
    CoreId(2),
    CoreId(3),
    CoreId(4),
    CoreId(5),
    CoreId(6),
    CoreId(7),
];
const LINES_PER_CORE: usize = 16;
const THRESHOLD: u64 = 100;
const ENCRYPTIONS: usize = 40;

/// Replays one encryption's table accesses into the machine as the victim.
fn victim_encrypt(
    machine: &mut Machine,
    aes: &Aes128,
    base: LineAddr,
    block: [u8; 16],
) -> Vec<TableAccess> {
    let (_, trace) = aes.encrypt_traced(block);
    for t in &trace {
        machine.access(VICTIM, t.line(base), false);
    }
    trace
}

fn spy_accuracy(kind: DirectoryKind) -> (f64, usize, usize, u64) {
    let mut machine = Machine::new(MachineConfig::skylake_x(8, kind));
    let base = LineAddr::new(0x7_0000);
    let aes = Aes128::new(*b"super secret key");
    let monitored = TableAccess { table: 0, index: 0 }.line(base); // T0 line 0

    // Build the directory eviction set for the monitored line.
    let ev = build_eviction_set(
        &machine,
        monitored,
        LINES_PER_CORE * ATTACKERS.len(),
        1 << 32,
    );

    // Warm the victim's tables.
    let mut rng = secdir_mem::SplitMix64::new(1);
    let mut random_block = move || {
        let mut b = [0u8; 16];
        for x in &mut b {
            *x = rng.next_below(256) as u8;
        }
        b
    };
    victim_encrypt(&mut machine, &aes, base, random_block());

    let mut correct = 0usize;
    let mut negatives = 0usize;
    let mut negatives_detected = 0usize;
    for _ in 0..ENCRYPTIONS {
        // Evict: the attacker storms the monitored line's directory set.
        for _pass in 0..2 {
            for (i, &core) in ATTACKERS.iter().enumerate() {
                for &l in &ev[i * LINES_PER_CORE..(i + 1) * LINES_PER_CORE] {
                    machine.access(core, l, false);
                }
            }
        }
        // The victim encrypts one block.
        let trace = victim_encrypt(&mut machine, &aes, base, random_block());
        let truth = trace.iter().any(|t| t.line(base) == monitored);
        // Reload: fast means "victim touched T0 line 0 this block".
        let latency = machine.access(ATTACKERS[0], monitored, false).latency;
        let guess = latency < THRESHOLD;
        if guess == truth {
            correct += 1;
        }
        if !truth {
            negatives += 1;
            if !guess {
                negatives_detected += 1;
            }
        }
    }
    (
        correct as f64 / ENCRYPTIONS as f64,
        negatives_detected,
        negatives,
        machine.stats().cores[VICTIM.0].inclusion_victims,
    )
}

fn main() {
    println!("spying on AES T0 line 0 over {ENCRYPTIONS} encryptions:\n");
    for (name, kind) in [
        ("Baseline (Skylake-X)", DirectoryKind::Baseline),
        ("SecDir", DirectoryKind::SecDir),
    ] {
        let (acc, neg_ok, neg, iv) = spy_accuracy(kind);
        println!(
            "{name:<22}: per-block accuracy {acc:.2}, untouched blocks \
             detected {neg_ok}/{neg}, victim inclusion victims {iv}"
        );
    }
    println!();
    println!("note: a T0 line is touched in most blocks (36 T0 lookups per");
    println!("encryption over 16 lines), so a blind attacker that always");
    println!("guesses 'touched' sits near the base rate; the Baseline spy is");
    println!("near-perfect, while SecDir pins the attacker to the base rate");
    println!("and creates zero victim inclusion victims.");

    // The Figure-6 check: on SecDir with ED/TD fully controlled by the
    // attacker (VD-only), the victim's table lines never leave its L2.
    let mut machine = Machine::new(MachineConfig::skylake_x(8, DirectoryKind::SecDirVdOnly));
    let base = LineAddr::new(0x7_0000);
    let mut victim = secdir_workloads::aes::AesVictim::new(*b"super secret key", base, 9);
    let mut mem_accesses = 0u64;
    let mut total = 0u64;
    while victim.encryptions < 100 {
        let a = victim.next_access().expect("infinite stream");
        let o = machine.access(VICTIM, a.line, a.write);
        total += 1;
        if o.served == secdir_machine::ServedBy::Memory {
            mem_accesses += 1;
        }
    }
    println!();
    println!(
        "worst-case attacker (VD only): {mem_accesses} memory accesses in \
         {total} table lookups (the 80 first-touches of 5 tables; everything \
         else stays private)"
    );
}
