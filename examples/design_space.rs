//! Exploring SecDir's design space: storage, area, and VD sizing as the
//! machine scales from 4 to 128 cores (paper §7 and Figure 5).
//!
//! Run with `cargo run --release --example design_space`.

use secdir_area::area::table7_area;
use secdir_area::associativity::required_associativity;
use secdir_area::design_space::design_point;
use secdir_area::storage::{baseline_slice, secdir_slice, storage_crossover_cores};

fn main() {
    println!(
        "{:>6} | {:>12} {:>12} | {:>10} {:>10} | {:>10} | {:>9}",
        "cores", "base KB", "secdir KB", "base mm2", "sec mm2", "VD/L2", "req ways"
    );
    for cores in [4usize, 8, 16, 32, 44, 64, 128] {
        let b = baseline_slice(cores);
        let s = secdir_slice(cores);
        let (ba, sa) = table7_area(cores);
        let ratio = design_point(cores, 8)
            .map(|p| p.ratio_to_l2)
            .unwrap_or(f64::NAN);
        println!(
            "{:>6} | {:>12.2} {:>12.2} | {:>10.3} {:>10.3} | {:>10.3} | {:>9}",
            cores,
            b.total_kb(),
            s.total_kb(),
            ba.total_mm2(),
            sa.total_mm2(),
            ratio,
            required_associativity(cores),
        );
    }
    println!();
    println!(
        "SecDir's directory becomes strictly smaller than the Skylake-X's at \
         {} cores (paper: 44);",
        storage_crossover_cores()
    );
    println!("a conventional directory would need the `req ways` column to resist the attack.");
}
