//! End-to-end directory side-channel attacks: evict+reload and prime+probe
//! against the Baseline Skylake-X directory and against SecDir.
//!
//! Run with `cargo run --release --example attack_demo`.

use secdir_attack::{evict_reload_attack, prime_probe_attack, AttackConfig};
use secdir_machine::{DirectoryKind, Machine, MachineConfig};
use secdir_mem::LineAddr;

fn bits(v: &[bool]) -> String {
    v.iter().map(|&b| if b { '1' } else { '0' }).collect()
}

fn main() {
    let target = LineAddr::new(0xbad_c0de);
    for (name, kind) in [
        ("Baseline (Skylake-X)", DirectoryKind::Baseline),
        ("SecDir", DirectoryKind::SecDir),
    ] {
        println!("=== {name} ===");
        let cfg = AttackConfig {
            bits: 32,
            ..AttackConfig::standard(8)
        };

        let mut machine = Machine::new(MachineConfig::skylake_x(8, kind));
        let er = evict_reload_attack(&mut machine, &cfg, target);
        println!("evict+reload:");
        println!("  secret : {}", bits(&er.truth));
        println!("  decoded: {}", bits(&er.guessed));
        println!(
            "  accuracy {:.2}, inclusion victims in the victim's caches: {}",
            er.accuracy, er.victim_inclusion_victims
        );

        let mut machine = Machine::new(MachineConfig::skylake_x(8, kind));
        let pp = prime_probe_attack(&mut machine, &cfg, target);
        println!("prime+probe:");
        println!("  secret : {}", bits(&pp.truth));
        println!("  decoded: {}", bits(&pp.guessed));
        println!(
            "  accuracy {:.2}, inclusion victims in the victim's caches: {}",
            pp.accuracy, pp.victim_inclusion_victims
        );
        println!();
    }
    println!("Baseline decodes the secret essentially perfectly;");
    println!("SecDir leaves the attacker guessing and the victim untouched.");
}
