//! Quickstart: build a SecDir machine, watch the directory work, and see
//! the security property in one minute.
//!
//! Run with `cargo run --release --example quickstart`.

use secdir_machine::{DirectoryKind, Machine, MachineConfig, ServedBy};
use secdir_mem::{CoreId, LineAddr};

fn main() {
    // The paper's Table-4 machine: 8 cores, 1 MB L2s, sliced non-inclusive
    // LLC, SecDir directory (ED 8-way + TD 11-way + 8 cuckoo VD banks per
    // slice).
    let mut machine = Machine::new(MachineConfig::skylake_x(8, DirectoryKind::SecDir));

    let line = LineAddr::new(0x4_2000);
    let core0 = CoreId(0);
    let core1 = CoreId(1);

    // A cold read goes to memory and allocates an Extended Directory entry.
    let miss = machine.access(core0, line, false);
    println!(
        "cold read : {:>3} cycles, served by {:?}",
        miss.latency, miss.served
    );
    assert_eq!(miss.served, ServedBy::Memory);

    // A re-read hits the L1.
    let hit = machine.access(core0, line, false);
    println!(
        "warm read : {:>3} cycles, served by {:?}",
        hit.latency, hit.served
    );
    assert_eq!(hit.served, ServedBy::L1);

    // Another core's read is a cache-to-cache transfer through the ED.
    let c2c = machine.access(core1, line, false);
    println!(
        "c2c read  : {:>3} cycles, served by {:?}",
        c2c.latency, c2c.served
    );
    assert_eq!(c2c.served, ServedBy::EdTd);

    // Where does the directory track the line?
    let slice = machine.slice_of(line);
    println!(
        "directory : {slice} tracks {line} as {:?}",
        machine.slice(slice).locate(line)
    );

    // The security property, in miniature: storm the directory from the
    // other 7 cores and check that core 0's lines were never invalidated.
    let hot: Vec<LineAddr> = (0..64u64).map(|i| LineAddr::new(0x4_2000 + i)).collect();
    for &l in &hot {
        machine.access(core0, l, false);
    }
    for burst in 0..20_000u64 {
        let attacker = CoreId(1 + (burst % 7) as usize);
        machine.access(attacker, LineAddr::new(0x900_0000 + burst), false);
    }
    let survivors = hot
        .iter()
        .filter(|&&l| machine.caches(core0).l2_contains(l))
        .count();
    println!("after a 20k-access storm from 7 cores: {survivors}/64 victim lines still in L2");
    println!(
        "inclusion victims suffered by core 0: {}",
        machine.stats().cores[0].inclusion_victims
    );
    assert_eq!(machine.stats().cores[0].inclusion_victims, 0);
    machine
        .check_invariants()
        .expect("directory inclusion invariant");
    println!("directory invariants hold — done.");
}
